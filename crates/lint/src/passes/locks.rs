//! Pass 2 — lock-discipline.
//!
//! While a `SharedState` RwLock guard is live in a function body, the code
//! must not (a) acquire a second state guard — an instant self-deadlock
//! under parking_lot's non-reentrant locks — or (b) perform blocking I/O
//! (`std::net`, `std::fs`, blocking channel receives, connect/bind/accept),
//! which would stall every other session on the daemon. The pass walks one
//! level into same-file helpers so the discipline cannot be laundered
//! through a wrapper.
//!
//! Guard liveness is scoped conservatively from the token stream:
//!
//! - an acquisition that is immediately `.method()`-chained is a temporary
//!   dropped at the end of its statement;
//! - a bound acquisition (`let g = ...`, `if let Some(g) = ...`) is live to
//!   the end of its innermost enclosing brace block, or to `drop(g)`.

use crate::scan;
use crate::{Diagnostic, SourceFile, Workspace};
use syn::{ItemFn, Token};

pub const NAME: &str = "lock-discipline";

/// RwLock acquisition methods.
const ACQUIRE: &[&str] = &["read", "write", "try_read", "try_write"];

/// Receiver chains whose last identifier is one of these are treated as
/// the shared state.
const STATE_RECV: &[&str] = &["state", "shared"];

/// Blocking calls (method or free) denied while a guard is live.
const BLOCKING: &[&str] = &["recv_blocking", "sleep", "connect", "bind", "accept"];

/// Path prefixes denied while a guard is live.
const BLOCKING_PATHS: &[&[&str]] = &[&["std", "fs"], &["std", "net"]];

/// The measurement harness is exempt: benches hold guards deliberately to
/// time lock contention itself.
fn in_scope(rel: &str) -> bool {
    !rel.starts_with("crates/bench/")
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        let facts = FileFacts::collect(sf);
        for f in sf.ast.functions() {
            if f.in_test || !f.func.has_body {
                continue;
            }
            check_fn(sf, f.func, &facts, &mut out);
        }
    }
    out
}

/// Per-file summary of what each named function does, for the one-level
/// helper walk.
struct FileFacts {
    /// Functions whose bodies acquire a state guard.
    acquires: Vec<String>,
    /// Functions whose bodies perform blocking I/O.
    blocks: Vec<String>,
    /// Functions returning a guard (their call sites open a guard scope).
    returns_guard: Vec<String>,
}

impl FileFacts {
    fn collect(sf: &SourceFile) -> FileFacts {
        let mut facts = FileFacts {
            acquires: Vec::new(),
            blocks: Vec::new(),
            returns_guard: Vec::new(),
        };
        for f in sf.ast.functions() {
            if f.in_test || !f.func.has_body {
                continue;
            }
            let body = &f.func.body;
            if !direct_acquisitions(body).is_empty() {
                facts.acquires.push(f.func.name.clone());
            }
            if !blocking_sites(body).is_empty() {
                facts.blocks.push(f.func.name.clone());
            }
            if f.func
                .sig
                .iter()
                .any(|t| t.kind == syn::TokenKind::Ident && t.text.contains("Guard"))
            {
                facts.returns_guard.push(f.func.name.clone());
            }
        }
        facts
    }
}

/// An acquisition site in a body: the index range of the call and its
/// source line. Shared with the reactor-discipline pass, which applies the
/// same liveness model to reactor waits.
pub(crate) struct Acquisition {
    /// Index of the `.` (method form) or the callee identifier (helper
    /// form).
    pub(crate) start: usize,
    /// Index of the call's closing `)`.
    pub(crate) close: usize,
    pub(crate) line: u32,
    pub(crate) what: String,
}

/// Direct state-guard acquisitions: `.read()` / `.write()` / `.try_read()`
/// / `.try_write()` with a state-ish receiver.
pub(crate) fn direct_acquisitions(body: &[Token]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if !ACQUIRE.contains(&mc.name) {
            continue;
        }
        let recv = scan::receiver_idents(body, mc.idx);
        let last = recv.last().map(String::as_str).unwrap_or("");
        if !STATE_RECV.contains(&last) {
            continue;
        }
        out.push(Acquisition {
            start: mc.idx,
            close: scan::close_of(body, mc.idx + 2),
            line: mc.line,
            what: format!("{last}.{}()", mc.name),
        });
    }
    out
}

/// Blocking-call sites in a body: (index, line, description).
fn blocking_sites(body: &[Token]) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if BLOCKING.contains(&mc.name) {
            out.push((mc.idx, mc.line, format!(".{}()", mc.name)));
        }
    }
    for fc in scan::free_calls(body) {
        if BLOCKING.contains(&fc.name) {
            // Method calls are excluded above; this catches
            // `thread::sleep(..)`, `TcpChannel::connect(..)` path forms.
            out.push((fc.idx, fc.line, format!("{}(...)", fc.name)));
        }
    }
    for i in 0..body.len() {
        for path in BLOCKING_PATHS {
            if scan::path_starts(body, i, path)
                && (i == 0 || !body[i - 1].is_punct(':'))
                && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
            {
                out.push((i, body[i].line, format!("{}::{}", path[0], path[1])));
            }
        }
    }
    out
}

fn check_fn(sf: &SourceFile, f: &ItemFn, facts: &FileFacts, out: &mut Vec<Diagnostic>) {
    let body = &f.body;
    let mut acqs = direct_acquisitions(body);
    // Helper-form acquisitions: calls to same-file functions that acquire
    // and hand back a guard (`read_or_busy` / `write_or_busy`).
    for fc in scan::free_calls(body) {
        if fc.name != f.name
            && facts.acquires.iter().any(|n| n == fc.name)
            && facts.returns_guard.iter().any(|n| n == fc.name)
        {
            acqs.push(Acquisition {
                start: fc.idx,
                close: scan::close_of(body, fc.idx + 1),
                line: fc.line,
                what: format!("{}(...)", fc.name),
            });
        }
    }
    acqs.sort_by_key(|a| a.start);

    let blocking = blocking_sites(body);
    for acq in &acqs {
        let scope_end = guard_scope_end(body, acq);
        let scope_start = acq.close + 1;
        if scope_start >= scope_end {
            continue;
        }
        // Second acquisition while live.
        for other in &acqs {
            if other.start > scope_start && other.start < scope_end {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: other.line,
                    message: format!(
                        "`{}` in `{}` acquires a state guard while the guard from `{}` (line \
                         {}) is still live — non-reentrant RwLock, this self-deadlocks",
                        other.what, f.name, acq.what, acq.line
                    ),
                });
            }
        }
        // Blocking I/O while live.
        for (idx, line, what) in &blocking {
            if *idx > scope_start && *idx < scope_end {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: *line,
                    message: format!(
                        "blocking call `{what}` in `{}` while the state guard from `{}` (line \
                         {}) is live — every other session stalls behind it",
                        f.name, acq.what, acq.line
                    ),
                });
            }
        }
        // One-level helper walk: calls to same-file functions that acquire
        // or block.
        for fc in scan::free_calls(body) {
            if fc.idx <= scope_start || fc.idx >= scope_end || fc.name == f.name {
                continue;
            }
            // Guard-returning acquirers are already counted as
            // acquisitions above.
            if facts.returns_guard.iter().any(|n| n == fc.name) {
                continue;
            }
            let does_acquire = facts.acquires.iter().any(|n| n == fc.name);
            let does_block = facts.blocks.iter().any(|n| n == fc.name);
            if does_acquire || does_block {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: fc.line,
                    message: format!(
                        "`{}` calls helper `{}` — which {} — while the state guard from `{}` \
                         (line {}) is live",
                        f.name,
                        fc.name,
                        if does_acquire {
                            "acquires a state guard"
                        } else {
                            "performs blocking I/O"
                        },
                        acq.what,
                        acq.line
                    ),
                });
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}

/// Where the guard from `acq` stops being live.
pub(crate) fn guard_scope_end(body: &[Token], acq: &Acquisition) -> usize {
    // Temporary: the acquisition is immediately chained (`state.read().x`),
    // so the guard drops at the end of the statement.
    if body.get(acq.close + 1).is_some_and(|t| t.is_punct('.')) {
        return scan::statement_end(body, acq.close);
    }
    // Bound (or used as a scrutinee): live to the end of the innermost
    // enclosing block, or to an explicit `drop(name)`.
    let end = scan::block_end(body, acq.start);
    if let Some(name) = scan::let_binding_before(body, acq.start) {
        for i in acq.close + 1..end.min(body.len().saturating_sub(2)) {
            if body[i].is_ident("drop") && body[i + 1].is_punct('(') && body[i + 2].is_ident(&name)
            {
                return i;
            }
        }
    }
    end
}
