//! Pass 5 — panic-path audit.
//!
//! One panic in the server request loop, the client connection glue, or
//! the DCM update leg kills the daemon every Athena workstation depends
//! on. In those files, non-test code must not call `.unwrap()`,
//! `.expect(..)`, or `panic!` — errors must surface as
//! `MoiraError`/`UpdateError` returns. (`unwrap_or` / `unwrap_or_else`
//! and `unreachable!` on genuinely impossible arms are fine; matching is
//! token-exact, not substring.)
//!
//! The durable-storage modules are held to the same bar for a stronger
//! reason: WAL scan and snapshot decode run on whatever bytes a crash
//! left behind, so a panic there doesn't just kill the daemon — it makes
//! the database unbootable until someone hand-edits the log. Recovery
//! code must treat arbitrary bytes as a valid (if empty) history.

use crate::engine::Engine;
use crate::scan;
use crate::{Diagnostic, Workspace};

pub const NAME: &str = "panic-path";

const FILES: &[&str] = &[
    "crates/core/src/server.rs",
    "crates/client/src/conn.rs",
    "crates/dcm/src/update.rs",
    "crates/core/src/recovery.rs",
    "crates/db/src/storage.rs",
    "crates/db/src/wal.rs",
    "crates/db/src/snapshot.rs",
];

pub fn run(ws: &Workspace, _eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in FILES {
        let Some(sf) = ws.file(rel) else { continue };
        for f in sf.ast.functions() {
            if f.in_test {
                continue;
            }
            let body = &f.func.body;
            for mc in scan::method_calls(body) {
                if mc.name == "unwrap" || mc.name == "expect" {
                    out.push(Diagnostic {
                        chain: Vec::new(),
                        pass: NAME,
                        file: sf.rel.clone(),
                        line: mc.line,
                        message: format!(
                            "`.{}()` in `{}` — a panic here kills the daemon; return a \
                             proper error instead",
                            mc.name, f.func.name
                        ),
                    });
                }
            }
            for (i, t) in body.iter().enumerate() {
                if t.is_ident("panic") && body.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    out.push(Diagnostic {
                        chain: Vec::new(),
                        pass: NAME,
                        file: sf.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`panic!` in `{}` — a panic here kills the daemon; return a \
                             proper error instead",
                            f.func.name
                        ),
                    });
                }
            }
        }
    }
    out
}
