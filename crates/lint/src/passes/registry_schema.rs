//! Pass 3 — registry/schema cross-check.
//!
//! The paper's closed query surface means every `QueryHandle` literal must
//! be fully coherent before the daemon boots: the handler identifier
//! resolves, the declared `QueryKind` matches the handler tier (the
//! registry asserts this at runtime; this pass catches it at lint time),
//! the access rule is one of the known forms (`QueryAclOrSelf(i)` must
//! index a real argument — `seed_capacls` derives the capability rows from
//! the registry itself, so capacls coverage is structural), and every
//! table/column string the query path mentions exists in `schema.rs`.

use std::collections::{HashMap, HashSet};

use crate::engine::Engine;
use crate::scan;
use crate::{Diagnostic, Workspace};
use syn::{Token, TokenKind};

pub const NAME: &str = "registry-schema";

const QUERIES_DIR: &str = "crates/core/src/queries/";
const SCHEMA_FILE: &str = "crates/core/src/schema.rs";

/// Methods whose first string argument is a table name
/// (`Database::select("users", ..)`, `state.db.table("list")`, ...).
const TABLE_ARG_METHODS: &[&str] = &[
    "table",
    "table_mut",
    "append",
    "update",
    "delete",
    "delete_where",
    "select",
    "select_exactly_one",
    "cell",
    "has_table",
];

const KINDS: &[&str] = &["Retrieve", "Append", "Update", "Delete", "Special"];
const MUTATING_KINDS: &[&str] = &["Append", "Update", "Delete"];
const ACCESS_RULES: &[&str] = &["Public", "QueryAcl", "QueryAclOrSelf", "Custom"];

pub fn run(ws: &Workspace, _eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(schema) = parse_schema(ws, &mut out) else {
        return out;
    };
    let mut seen_names: HashMap<String, String> = HashMap::new();
    let mut seen_short: HashMap<String, String> = HashMap::new();
    for sf in ws.files.iter().filter(|f| f.rel.starts_with(QUERIES_DIR)) {
        let fn_map = sf.fn_map();
        for handle in query_handles(&sf.tokens) {
            let line = handle.line;
            let diag = |msg: String| Diagnostic {
                chain: Vec::new(),
                pass: NAME,
                file: sf.rel.clone(),
                line,
                message: msg,
            };
            // Duplicate names close the query surface off from shadowing.
            if let Some(name) = &handle.name {
                if let Some(prev) = seen_names.insert(name.clone(), sf.rel.clone()) {
                    out.push(diag(format!("query `{name}` is also registered in {prev}")));
                }
            }
            if let Some(short) = &handle.shortname {
                if let Some(prev) = seen_short.insert(short.clone(), sf.rel.clone()) {
                    out.push(diag(format!(
                        "shortname `{short}` is also registered in {prev}"
                    )));
                }
            }
            let qname = handle.name.clone().unwrap_or_else(|| "<query>".into());
            // Handler resolution.
            match &handle.handler {
                Some((tier, fn_name)) => {
                    if !fn_map.contains_key(fn_name.as_str()) {
                        out.push(diag(format!(
                            "`{qname}` names handler `{fn_name}`, which is not defined in this \
                             module"
                        )));
                    }
                    // Kind ↔ tier.
                    if let Some(kind) = &handle.kind {
                        if !KINDS.contains(&kind.as_str()) {
                            out.push(diag(format!("`{qname}` has unknown kind `{kind}`")));
                        } else {
                            let mutating = MUTATING_KINDS.contains(&kind.as_str());
                            let is_write = *tier == Tier::Write;
                            if mutating != is_write {
                                out.push(diag(format!(
                                    "`{qname}` is kind {kind} but its handler is on the {} \
                                     tier — mutations must be Handler::Write, retrieves \
                                     Handler::Read",
                                    if is_write { "write" } else { "read" }
                                )));
                            }
                        }
                    }
                }
                None => out.push(diag(format!("`{qname}` has no parsable handler field"))),
            }
            // Access rule.
            match &handle.access {
                Some((rule, arg)) => {
                    if !ACCESS_RULES.contains(&rule.as_str()) {
                        out.push(diag(format!("`{qname}` has unknown access rule `{rule}`")));
                    }
                    if rule == "QueryAclOrSelf" {
                        match (arg, handle.argc) {
                            (Some(i), Some(n)) if *i >= n => out.push(diag(format!(
                                "`{qname}`: QueryAclOrSelf({i}) indexes past the {n} declared \
                                 argument(s)"
                            ))),
                            (None, _) => out.push(diag(format!(
                                "`{qname}`: QueryAclOrSelf needs an argument index"
                            ))),
                            _ => {}
                        }
                    }
                }
                None => out.push(diag(format!("`{qname}` has no parsable access field"))),
            }
        }
        check_table_refs(sf, &schema, &mut out);
    }
    // The access-control module reads schema tables too.
    if let Some(sf) = ws.file("crates/core/src/access.rs") {
        check_table_refs(sf, &schema, &mut out);
    }
    out
}

struct Schema {
    tables: HashSet<String>,
    columns: HashSet<String>,
}

/// Reads `schema.rs`: tables from `TableSchema::new("name", ...)`, columns
/// from `C::str/int/boolean("col")` constructors, and cross-checks the
/// `RELATIONS` inventory against the created tables.
fn parse_schema(ws: &Workspace, out: &mut Vec<Diagnostic>) -> Option<Schema> {
    let sf = ws.file(SCHEMA_FILE)?;
    let toks = &sf.tokens;
    let mut schema = Schema {
        tables: HashSet::new(),
        columns: HashSet::new(),
    };
    for i in 0..toks.len() {
        if toks[i].is_ident("TableSchema")
            && scan::path_starts(toks, i, &["TableSchema", "new"])
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let open = i + 4;
            if let Some(name) = toks.get(open + 1).filter(|t| t.kind == TokenKind::Str) {
                schema.tables.insert(name.text.clone());
            }
            let close = scan::close_of(toks, open);
            let mut j = open;
            while j < close {
                if (toks[j].is_ident("str")
                    || toks[j].is_ident("int")
                    || toks[j].is_ident("boolean"))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(j + 2).is_some_and(|t| t.kind == TokenKind::Str)
                {
                    schema.columns.insert(toks[j + 2].text.clone());
                }
                j += 1;
            }
        }
    }
    // RELATIONS const must list exactly the created tables.
    for i in 0..toks.len() {
        if toks[i].is_ident("RELATIONS") && i > 0 && toks[i - 1].is_ident("const") {
            // The value's `[` is the first one after the `=` (the type
            // ascription `&[&str]` has its own brackets).
            let Some(eq) = toks[i..].iter().position(|t| t.is_punct('=')) else {
                continue;
            };
            let Some(open) = toks[i + eq..].iter().position(|t| t.is_punct('[')) else {
                continue;
            };
            let listed: HashSet<String> = scan::strs_in_group(toks, i + eq + open)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            for t in schema.tables.iter() {
                if !listed.contains(t) {
                    out.push(Diagnostic {
                        chain: Vec::new(),
                        pass: NAME,
                        file: sf.rel.clone(),
                        line: toks[i].line,
                        message: format!("table `{t}` is created but missing from RELATIONS"),
                    });
                }
            }
            for t in &listed {
                if !schema.tables.contains(t) {
                    out.push(Diagnostic {
                        chain: Vec::new(),
                        pass: NAME,
                        file: sf.rel.clone(),
                        line: toks[i].line,
                        message: format!("RELATIONS lists `{t}` but no such table is created"),
                    });
                }
            }
            break;
        }
    }
    Some(schema)
}

#[derive(PartialEq)]
enum Tier {
    Read,
    Write,
}

struct Handle {
    line: u32,
    name: Option<String>,
    shortname: Option<String>,
    kind: Option<String>,
    access: Option<(String, Option<usize>)>,
    argc: Option<usize>,
    handler: Option<(Tier, String)>,
}

/// Every `QueryHandle { ... }` literal in the token stream, with its
/// fields decoded. `args:` may be an inline `&[...]` or a same-file const
/// identifier, which is resolved for its element count.
fn query_handles(toks: &[Token]) -> Vec<Handle> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("QueryHandle") || !toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            continue;
        }
        let open = i + 1;
        let close = scan::close_of(toks, open);
        // `QueryHandle { ..*q }` re-registers an already-checked literal.
        if toks.get(open + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(open + 2).is_some_and(|t| t.is_punct('.'))
        {
            continue;
        }
        let mut handle = Handle {
            line: toks[i].line,
            name: None,
            shortname: None,
            kind: None,
            access: None,
            argc: None,
            handler: None,
        };
        for (field, value) in fields(toks, open, close) {
            let value = &toks[value.0..value.1];
            match field.as_str() {
                "name" => handle.name = first_str(value),
                "shortname" => handle.shortname = first_str(value),
                "kind" => {
                    handle.kind = value
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                }
                "access" => {
                    let rule = value
                        .iter()
                        .find(|t| ACCESS_RULES.contains(&t.text.as_str()))
                        .or_else(|| value.iter().find(|t| t.kind == TokenKind::Ident));
                    if let Some(rule) = rule {
                        let arg = value
                            .iter()
                            .find(|t| t.kind == TokenKind::Number)
                            .and_then(|t| t.text.parse::<usize>().ok());
                        handle.access = Some((rule.text.clone(), arg));
                    }
                }
                "args" => handle.argc = arg_count(toks, value),
                "handler" => {
                    for (j, t) in value.iter().enumerate() {
                        let tier = if t.is_ident("Read") {
                            Tier::Read
                        } else if t.is_ident("Write") {
                            Tier::Write
                        } else {
                            continue;
                        };
                        if let Some(name) = value.get(j + 2).filter(|t| t.kind == TokenKind::Ident)
                        {
                            handle.handler = Some((tier, name.text.clone()));
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(handle);
    }
    out
}

/// Field name → token range of its value, for a struct literal between
/// `open` (`{`) and `close` (`}`), splitting at top-level commas.
fn fields(toks: &[Token], open: usize, close: usize) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // Value runs to the next comma at depth 0.
            let start = j + 2;
            let mut k = start;
            let mut d = 0i32;
            while k < close {
                let v = &toks[k];
                if v.is_punct('(') || v.is_punct('[') || v.is_punct('{') {
                    d += 1;
                } else if v.is_punct(')') || v.is_punct(']') || v.is_punct('}') {
                    d -= 1;
                } else if v.is_punct(',') && d == 0 {
                    break;
                }
                k += 1;
            }
            out.push((t.text.clone(), (start, k)));
            j = k;
            continue;
        }
        j += 1;
    }
    out
}

fn first_str(value: &[Token]) -> Option<String> {
    value
        .iter()
        .find(|t| t.kind == TokenKind::Str)
        .map(|t| t.text.clone())
}

/// Number of declared arguments: string count of an inline `&[...]`, or of
/// the same-file `const NAME: &[&str] = &[...]` an identifier refers to.
fn arg_count(file_toks: &[Token], value: &[Token]) -> Option<usize> {
    if let Some(open_rel) = value.iter().position(|t| t.is_punct('[')) {
        let n = value
            .iter()
            .skip(open_rel)
            .filter(|t| t.kind == TokenKind::Str)
            .count();
        return Some(n);
    }
    let name = value.iter().find(|t| t.kind == TokenKind::Ident)?;
    for i in 0..file_toks.len() {
        if file_toks[i].is_ident(&name.text) && i > 0 && file_toks[i - 1].is_ident("const") {
            let rest = &file_toks[i..];
            // Skip the type ascription's brackets: the value's `[` comes
            // after the `=`.
            let eq = rest.iter().position(|t| t.is_punct('='))?;
            let open = rest[eq..].iter().position(|t| t.is_punct('['))?;
            return Some(scan::strs_in_group(file_toks, i + eq + open).len());
        }
    }
    None
}

/// Checks every table-name and column-name string literal in a file
/// against the schema.
fn check_table_refs(sf: &crate::SourceFile, schema: &Schema, out: &mut Vec<Diagnostic>) {
    let toks = &sf.tokens;
    for mc in scan::method_calls(toks) {
        if TABLE_ARG_METHODS.contains(&mc.name) {
            let args = scan::str_args(toks, mc.idx + 2);
            for (pos, text, line) in &args {
                // `Table::cell(row, "col")` and `Table::update(id, ..)`
                // have no leading table string; a string in position 0 of
                // `cell` on a table receiver is impossible (RowId comes
                // first), so a position-0 string is always a table name.
                if *pos == 0 {
                    if !schema.tables.contains(text) {
                        out.push(Diagnostic {
                            chain: Vec::new(),
                            pass: NAME,
                            file: sf.rel.clone(),
                            line: *line,
                            message: format!(
                                "`.{}(\"{text}\", ..)` references a table not in schema.rs",
                                mc.name
                            ),
                        });
                    }
                } else if mc.name == "cell" && !schema.columns.contains(text) {
                    out.push(Diagnostic {
                        chain: Vec::new(),
                        pass: NAME,
                        file: sf.rel.clone(),
                        line: *line,
                        message: format!(
                            "`.cell(.., \"{text}\")` references a column not in schema.rs"
                        ),
                    });
                }
            }
            // Update change-lists: `("col", value)` tuples anywhere in the
            // call.
            if mc.name == "update" {
                let close = scan::close_of(toks, mc.idx + 2);
                for j in mc.idx + 2..close {
                    if toks[j].is_punct('(')
                        && toks.get(j + 1).is_some_and(|t| t.kind == TokenKind::Str)
                        && toks.get(j + 2).is_some_and(|t| t.is_punct(','))
                        && j > 0
                        && !toks[j - 1].is_punct('!')
                        && toks[j - 1].kind != TokenKind::Ident
                    {
                        let col = &toks[j + 1];
                        if !schema.columns.contains(&col.text) {
                            out.push(Diagnostic {
                                chain: Vec::new(),
                                pass: NAME,
                                file: sf.rel.clone(),
                                line: col.line,
                                message: format!(
                                    "update change-list names column `{}`, not in schema.rs",
                                    col.text
                                ),
                            });
                        }
                    }
                }
            }
        }
        // `.col("name")` — direct schema column lookup.
        if mc.name == "col" {
            for (pos, text, line) in scan::str_args(toks, mc.idx + 2) {
                if pos == 0 && !schema.columns.contains(&text) {
                    out.push(Diagnostic {
                        chain: Vec::new(),
                        pass: NAME,
                        file: sf.rel.clone(),
                        line,
                        message: format!("`.col(\"{text}\")` names a column not in schema.rs"),
                    });
                }
            }
        }
    }
    // Pred constructors: first string argument is a column.
    for i in 0..toks.len() {
        if toks[i].is_ident("Pred")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.kind == TokenKind::Str)
        {
            let variant = &toks[i + 3].text;
            if variant == "And" || variant == "Or" || variant == "Not" || variant == "True" {
                continue;
            }
            let col = &toks[i + 5];
            if !schema.columns.contains(&col.text) {
                out.push(Diagnostic {
                    chain: Vec::new(),
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: col.line,
                    message: format!(
                        "`Pred::{variant}(\"{}\", ..)` names a column not in schema.rs",
                        col.text
                    ),
                });
            }
        }
    }
}
