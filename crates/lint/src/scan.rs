//! Token-stream scanning utilities shared by the lint passes.
//!
//! The shimmed `syn` lexer emits multi-character operators as single punct
//! tokens (`::` is two `:`), so all matchers here work at that granularity.

use syn::{Token, TokenKind};

/// A `.name(` method-call site. `idx` points at the `.`.
#[derive(Debug, Clone, Copy)]
pub struct MethodCall<'a> {
    pub idx: usize,
    pub name: &'a str,
    pub line: u32,
}

/// Every `.ident(` site in the token slice.
pub fn method_calls(toks: &[Token]) -> Vec<MethodCall<'_>> {
    let mut out = Vec::new();
    if toks.len() < 3 {
        return out;
    }
    for i in 0..toks.len() - 2 {
        if toks[i].is_punct('.')
            && toks[i + 1].kind == TokenKind::Ident
            && toks[i + 2].is_punct('(')
        {
            out.push(MethodCall {
                idx: i,
                name: &toks[i + 1].text,
                line: toks[i + 1].line,
            });
        }
    }
    out
}

/// A free or path-qualified call site `name(` that is not a method call.
/// `idx` points at the name; for `a::b::c(...)` the name is `c`.
#[derive(Debug, Clone, Copy)]
pub struct FreeCall<'a> {
    pub idx: usize,
    pub name: &'a str,
    pub line: u32,
}

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "loop", "else", "move", "fn", "let",
];

/// Every `ident(` call site that is not a method call, a definition, or a
/// keyword followed by a parenthesized expression.
pub fn free_calls(toks: &[Token]) -> Vec<FreeCall<'_>> {
    let mut out = Vec::new();
    if toks.len() < 2 {
        return out;
    }
    for i in 0..toks.len() - 1 {
        if toks[i].kind != TokenKind::Ident || !toks[i + 1].is_punct('(') {
            continue;
        }
        if CALL_KEYWORDS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if i > 0 {
            let prev = &toks[i - 1];
            // `.name(` is a method call; `fn name(` is a definition;
            // `name!` cannot reach here (the `!` breaks the adjacency).
            if prev.is_punct('.') || prev.is_ident("fn") {
                continue;
            }
        }
        out.push(FreeCall {
            idx: i,
            name: &toks[i].text,
            line: toks[i].line,
        });
    }
    out
}

/// Index of the opening delimiter matching the closer at `close`.
pub fn open_of(toks: &[Token], close: usize) -> Option<usize> {
    let (o, c) = match toks[close].text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        "}" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        if toks[i].is_punct(c) {
            depth += 1;
        } else if toks[i].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the closing delimiter matching the opener at `open`, or the
/// slice end when unbalanced.
pub fn close_of(toks: &[Token], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return toks.len(),
    };
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// The identifier chain to the left of the `.` at `dot_idx`, leftmost
/// first: for `state.db.table("x").iter()` at `.iter` this returns
/// `["state", "db", "table"]`. Stops at anything that is not a `.`/`::`
/// chain of identifiers, calls, or index expressions.
pub fn receiver_idents(toks: &[Token], dot_idx: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = dot_idx as isize - 1;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is_punct(')') || t.is_punct(']') {
            match open_of(toks, i as usize) {
                // Skip the argument/index group; the callee identifier (if
                // any) is picked up on the next iteration.
                Some(open) => i = open as isize - 1,
                None => break,
            }
            continue;
        }
        if t.is_punct('?') {
            i -= 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            out.push(t.text.clone());
            if i >= 1 && toks[i as usize - 1].is_punct('.') {
                i -= 2;
                continue;
            }
            if i >= 2 && toks[i as usize - 1].is_punct(':') && toks[i as usize - 2].is_punct(':') {
                i -= 3;
                continue;
            }
            break;
        }
        break;
    }
    out.reverse();
    out
}

/// Index one past the end of the innermost brace block containing `idx`
/// (i.e. the index of its closing `}`), or `toks.len()` when `idx` is at
/// the body's top level.
pub fn block_end(toks: &[Token], idx: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(idx + 1) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
    }
    toks.len()
}

/// Index of the `;` ending the statement containing `idx` (at the same
/// delimiter depth), or the end of the enclosing block when none is found.
pub fn statement_end(toks: &[Token], idx: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(idx + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
    }
    toks.len()
}

/// True when `toks[idx..]` starts with the given sequence of identifiers
/// separated by `::` (e.g. `path_starts(toks, i, &["std", "fs"])` matches
/// `std::fs`).
pub fn path_starts(toks: &[Token], idx: usize, segs: &[&str]) -> bool {
    let mut i = idx;
    for (n, seg) in segs.iter().enumerate() {
        if i >= toks.len() || !toks[i].is_ident(seg) {
            return false;
        }
        i += 1;
        if n + 1 < segs.len() {
            if i + 1 >= toks.len() || !toks[i].is_punct(':') || !toks[i + 1].is_punct(':') {
                return false;
            }
            i += 2;
        }
    }
    true
}

/// The string-literal arguments at the top nesting level of the call whose
/// opening paren is at `open`, with their positional argument index
/// (0-based, split on top-level commas).
pub fn str_args(toks: &[Token], open: usize) -> Vec<(usize, String, u32)> {
    let close = close_of(toks, open);
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut arg = 0usize;
    for t in toks.iter().take(close).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            arg += 1;
        } else if t.kind == TokenKind::Str && depth == 0 {
            out.push((arg, t.text.clone(), t.line));
        }
    }
    out
}

/// All string literals anywhere inside the delimiter group opening at
/// `open`.
pub fn strs_in_group(toks: &[Token], open: usize) -> Vec<(String, u32)> {
    let close = close_of(toks, open);
    toks[open + 1..close]
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| (t.text.clone(), t.line))
        .collect()
}

/// Walks back from `idx` to the start of the enclosing statement and
/// returns the name bound by a leading `let`, if the statement is a `let`
/// binding. Handles `let x =`, `let mut x =`, `let Some(x) =`,
/// `let Ok(x) =`.
pub fn let_binding_before(toks: &[Token], idx: usize) -> Option<String> {
    // Find statement start: the token after the previous `;`, `{` or `}`
    // at the same delimiter depth.
    let mut depth = 0i32;
    let mut start = 0usize;
    for j in (0..idx).rev() {
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth -= 1;
            if depth < 0 {
                start = j + 1;
                break;
            }
        } else if t.is_punct(';') && depth == 0 {
            start = j + 1;
            break;
        }
    }
    let stmt = &toks[start..idx];
    let let_pos = stmt.iter().position(|t| t.is_ident("let"))?;
    let mut k = let_pos + 1;
    if k < stmt.len() && stmt[k].is_ident("mut") {
        k += 1;
    }
    if k >= stmt.len() || stmt[k].kind != TokenKind::Ident {
        return None;
    }
    // `let name =`
    if k + 1 < stmt.len() && stmt[k + 1].is_punct('=') {
        return Some(stmt[k].text.clone());
    }
    // `let Some(name) =` / `let Ok(name) =`
    if (stmt[k].is_ident("Some") || stmt[k].is_ident("Ok"))
        && k + 3 < stmt.len()
        && stmt[k + 1].is_punct('(')
        && stmt[k + 2].kind == TokenKind::Ident
        && stmt[k + 3].is_punct(')')
    {
        return Some(stmt[k + 2].text.clone());
    }
    None
}
