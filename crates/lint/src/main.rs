//! `moira-lint` CLI.
//!
//! ```text
//! cargo run -p moira-lint                  # run all passes on the workspace
//! cargo run -p moira-lint -- --deny-all    # same; exit 1 on any finding (CI mode)
//! cargo run -p moira-lint -- --list        # print pass names and descriptions
//! cargo run -p moira-lint -- --pass panic-path
//! cargo run -p moira-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use moira_lint::{Workspace, PASSES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut pass: Option<String> = None;
    let mut list = false;
    // `--deny-all` is the documented CI flag; findings always fail the run,
    // so today it is the default behavior spelled out.
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--deny-all" => {}
            "--root" => root = args.next().map(PathBuf::from),
            "--pass" => pass = args.next(),
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        for p in PASSES {
            println!("{:<16} {}", p.name, p.description);
        }
        return ExitCode::SUCCESS;
    }
    let root = root.unwrap_or_else(|| {
        // Works both from the workspace root (CI) and from a crate dir.
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("moira-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match &pass {
        Some(name) => match ws.run_pass(name) {
            Some(d) => d,
            None => {
                eprintln!("moira-lint: unknown pass `{name}` (see --list)");
                return ExitCode::from(2);
            }
        },
        None => ws.run_all(),
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "moira-lint: {} file(s) clean across {} pass(es)",
            ws.files.len(),
            pass.as_ref().map_or(PASSES.len(), |_| 1)
        );
        ExitCode::SUCCESS
    } else {
        println!("moira-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "moira-lint — static analyzer for the Moira workspace invariants\n\n\
         USAGE: moira-lint [--deny-all] [--list] [--pass <name>] [--root <dir>]\n\n\
         OPTIONS:\n\
         \x20 --deny-all     CI mode (explicit; findings always fail the run)\n\
         \x20 --list         print pass names and descriptions\n\
         \x20 --pass <name>  run a single pass\n\
         \x20 --root <dir>   workspace root (default: cwd, or the manifest's)"
    );
}
