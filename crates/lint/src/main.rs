//! `moira-lint` CLI.
//!
//! ```text
//! cargo run -p moira-lint                  # run all passes on the workspace
//! cargo run -p moira-lint -- --deny-all    # CI mode: stale allows also fail the run
//! cargo run -p moira-lint -- --json        # machine-readable diagnostics on stdout
//! cargo run -p moira-lint -- --github      # GitHub Actions ::error annotations
//! cargo run -p moira-lint -- --list        # print pass names and descriptions
//! cargo run -p moira-lint -- --pass panic-path
//! cargo run -p moira-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use moira_lint::{Diagnostic, StaleAllow, Workspace, PASSES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut pass: Option<String> = None;
    let mut list = false;
    let mut deny_all = false;
    let mut json = false;
    let mut github = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--github" => github = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--pass" => pass = args.next(),
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        for p in PASSES {
            println!("{:<16} {}", p.name, p.description);
        }
        return ExitCode::SUCCESS;
    }
    let root = root.unwrap_or_else(|| {
        // Works both from the workspace root (CI) and from a crate dir.
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });
    let started = Instant::now();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("moira-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // Stale-allow detection is only meaningful on a full run: a single-pass
    // run would see every other pass's allows as unused.
    let (diags, stale) = match &pass {
        Some(name) => match ws.run_pass(name) {
            Some(d) => (d, Vec::new()),
            None => {
                eprintln!("moira-lint: unknown pass `{name}` (see --list)");
                return ExitCode::from(2);
            }
        },
        None => {
            let report = ws.run_full();
            (report.diagnostics, report.stale_allows)
        }
    };
    let wall_ms = started.elapsed().as_millis();

    if json {
        println!("{}", render_json(&diags, &stale, ws.files.len(), wall_ms));
    } else if github {
        for d in &diags {
            // ::error file=...,line=...::message — one annotation per
            // finding, with the witness chain folded into the message.
            let mut msg = format!("[{}] {}", d.pass, d.message);
            if !d.chain.is_empty() {
                msg.push_str(&format!(" (call chain: {})", d.chain_display()));
            }
            println!(
                "::error file={},line={}::{}",
                d.file,
                d.line,
                gh_escape(&msg)
            );
        }
        for s in &stale {
            println!(
                "::warning file={},line={}::lint:allow({}) no longer suppresses any \
                 diagnostic — remove it",
                s.file, s.line, s.pass
            );
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
        for s in &stale {
            println!("{s}");
        }
    }

    let failed = !diags.is_empty() || (deny_all && !stale.is_empty());
    if !json && !github {
        if failed {
            println!(
                "moira-lint: {} violation(s), {} stale allow(s)",
                diags.len(),
                stale.len()
            );
        } else {
            println!(
                "moira-lint: {} file(s) clean across {} pass(es) in {} ms{}",
                ws.files.len(),
                pass.as_ref().map_or(PASSES.len(), |_| 1),
                wall_ms,
                if stale.is_empty() {
                    String::new()
                } else {
                    format!(" ({} stale allow(s) — warning)", stale.len())
                }
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Hand-rolled JSON (the workspace carries no serializer dependency): one
/// object with `diagnostics`, `stale_allows`, `files`, and `wall_ms`.
fn render_json(diags: &[Diagnostic], stale: &[StaleAllow], files: usize, wall_ms: u128) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"pass\":{},\"file\":{},\"line\":{},\"message\":{},\"chain\":[",
            json_str(d.pass),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
        for (j, (f, l)) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"file\":{},\"line\":{l}}}", json_str(f)));
        }
        out.push_str("]}");
    }
    out.push_str("],\"stale_allows\":[");
    for (i, s) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"pass\":{},\"file\":{},\"line\":{}}}",
            json_str(&s.pass),
            json_str(&s.file),
            s.line
        ));
    }
    out.push_str(&format!("],\"files\":{files},\"wall_ms\":{wall_ms}}}"));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// GitHub annotation messages: `%`, `\r`, `\n` are the only escapes.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn print_help() {
    println!(
        "moira-lint — static analyzer for the Moira workspace invariants\n\n\
         USAGE: moira-lint [--deny-all] [--json] [--github] [--list] [--pass <name>] \
         [--root <dir>]\n\n\
         OPTIONS:\n\
         \x20 --deny-all     CI mode: stale lint:allow comments also fail the run\n\
         \x20 --json         machine-readable diagnostics (file/line/pass/chain) on stdout\n\
         \x20 --github       GitHub Actions ::error / ::warning annotations\n\
         \x20 --list         print pass names and descriptions\n\
         \x20 --pass <name>  run a single pass (skips stale-allow detection)\n\
         \x20 --root <dir>   workspace root (default: cwd, or the manifest's)"
    );
}
