//! Fixture harness: every `bad_*.rs` under `tests/fixtures/<pass>/` must
//! trip exactly its pass, every `good_*.rs` must stay clean, and the real
//! workspace at HEAD must be clean across all passes.
//!
//! A fixture file holds one or more virtual sources, each introduced by a
//! `//@ file: <workspace-relative-path>` line; the path decides which
//! scope rules apply (queries/, generators/, the panic-path file list...).

use std::fs;
use std::path::{Path, PathBuf};

use moira_lint::{Workspace, PASSES};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixture(path: &Path) -> Workspace {
    let text = fs::read_to_string(path).unwrap();
    let mut sources: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rel) = line.strip_prefix("//@ file: ") {
            sources.push((rel.trim().to_string(), String::new()));
        } else if let Some((_, body)) = sources.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    assert!(
        !sources.is_empty(),
        "{} has no `//@ file:` directive",
        path.display()
    );
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    Workspace::from_sources(&refs).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn fixture_files(pass: &str, prefix: &str) -> Vec<PathBuf> {
    let dir = fixtures_root().join(pass);
    let mut out: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".rs"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_pass_has_enough_fixtures() {
    for pass in PASSES {
        let bad = fixture_files(pass.name, "bad_");
        let good = fixture_files(pass.name, "good_");
        assert!(
            bad.len() >= 2,
            "{}: want >= 2 bad fixtures, have {}",
            pass.name,
            bad.len()
        );
        assert!(!good.is_empty(), "{}: want >= 1 good fixture", pass.name);
    }
}

#[test]
fn bad_fixtures_trip_their_pass() {
    for pass in PASSES {
        for path in fixture_files(pass.name, "bad_") {
            let ws = load_fixture(&path);
            let diags = ws.run_pass(pass.name).unwrap();
            assert!(
                !diags.is_empty(),
                "{} did not trip pass {}",
                path.display(),
                pass.name
            );
        }
    }
}

#[test]
fn good_fixtures_stay_clean() {
    for pass in PASSES {
        for path in fixture_files(pass.name, "good_") {
            let ws = load_fixture(&path);
            let diags = ws.run_pass(pass.name).unwrap();
            assert!(
                diags.is_empty(),
                "{} tripped pass {}: {:?}",
                path.display(),
                pass.name,
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn lint_allow_suppresses_a_finding() {
    // The bad panic fixture, with an allow comment on the line above the
    // violation: the finding must disappear — and only that one.
    let src = "\
fn poll(&mut self) {
    // lint:allow(panic-path)
    let msg = self.queue.pop().unwrap();
    let conn = self.connections.get(msg.conn).expect(\"conn vanished\");
    conn.reply(msg);
}
";
    let ws = Workspace::from_sources(&[("crates/core/src/server.rs", src)]).unwrap();
    let diags = ws.run_pass("panic-path").unwrap();
    assert_eq!(
        diags.len(),
        1,
        "allow should suppress the unwrap but keep the expect: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    assert!(diags[0].message.contains("expect"));
}

#[test]
fn transitive_diagnostics_carry_full_chains() {
    // The two-hop lock fixture must produce a witness chain naming every
    // file on the path down to the primitive, in order.
    let path = fixtures_root().join("lock-discipline/bad_two_hop_cross_file.rs");
    let ws = load_fixture(&path);
    let diags = ws.run_pass("lock-discipline").unwrap();
    let chained: Vec<String> = diags.iter().map(|d| d.chain_display()).collect();
    assert!(
        diags.iter().any(|d| {
            let files: Vec<&str> = d.chain.iter().map(|(f, _)| f.as_str()).collect();
            files
                == [
                    "crates/core/src/server.rs",
                    "crates/core/src/persist.rs",
                    "crates/core/src/media.rs",
                ]
        }),
        "no three-file chain in: {chained:?}"
    );
}

#[test]
fn allow_on_chain_hop_suppresses_transitive_finding() {
    // A reviewed allow at the primitive covers every caller whose chain
    // passes through it — callers do not need their own allows.
    let src_caller = "\
use crate::persist::flush_side_table;

fn commit(&mut self) {
    let mut guard = self.state.write();
    flush_side_table(&guard);
}
";
    let src_leaf = "\
pub fn flush_side_table(snapshot: &MoiraState) {
    // Bounded dump on the maintenance path, reviewed.
    // lint:allow(lock-discipline)
    std::thread::sleep(std::time::Duration::from_millis(1));
}
";
    let ws = Workspace::from_sources(&[
        ("crates/core/src/server.rs", src_caller),
        ("crates/core/src/persist.rs", src_leaf),
    ])
    .unwrap();
    let diags = ws.run_pass("lock-discipline").unwrap();
    assert!(
        diags.is_empty(),
        "allow at the primitive hop did not suppress: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    // Stale-allow detection must still count that allow as used.
    let report = ws.run_full();
    assert!(
        report.stale_allows.is_empty(),
        "chain-hop allow wrongly reported stale: {:?}",
        report
            .stale_allows
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn stale_allow_is_reported() {
    let src = "\
fn quiet(&self) -> usize {
    // lint:allow(lock-discipline)
    self.counter + 1
}
";
    let ws = Workspace::from_sources(&[("crates/core/src/server.rs", src)]).unwrap();
    let report = ws.run_full();
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.stale_allows.len(), 1, "expected one stale allow");
    assert_eq!(report.stale_allows[0].pass, "lock-discipline");
    assert_eq!(report.stale_allows[0].line, 2);
}

#[test]
fn unknown_pass_is_rejected() {
    let ws = Workspace::from_sources(&[]).unwrap();
    assert!(ws.run_pass("no-such-pass").is_none());
}

/// The self-check the tentpole demands: the tree at HEAD is clean, so CI
/// can deny-by-default without any allows in the audited files.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).unwrap();
    assert!(ws.files.len() > 50, "workspace walk looks broken");
    let diags = ws.run_all();
    assert!(
        diags.is_empty(),
        "workspace is not lint-clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// No stale `lint:allow` comments in the audited tree: every escape still
/// suppresses at least one raw finding.
#[test]
fn real_workspace_has_no_stale_allows() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).unwrap();
    let report = ws.run_full();
    assert!(
        report.stale_allows.is_empty(),
        "stale allows:\n{}",
        report
            .stale_allows
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The lint budget: a full workspace run (load + every pass, including the
/// call-graph fixpoint) must stay interactive. CI asserts the same bound.
#[test]
fn full_lint_run_stays_within_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let started = std::time::Instant::now();
    let ws = Workspace::load(&root).unwrap();
    let _ = ws.run_full();
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "full lint run took {elapsed:?} — over the 30 s budget"
    );
}
