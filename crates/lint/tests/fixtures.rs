//! Fixture harness: every `bad_*.rs` under `tests/fixtures/<pass>/` must
//! trip exactly its pass, every `good_*.rs` must stay clean, and the real
//! workspace at HEAD must be clean across all passes.
//!
//! A fixture file holds one or more virtual sources, each introduced by a
//! `//@ file: <workspace-relative-path>` line; the path decides which
//! scope rules apply (queries/, generators/, the panic-path file list...).

use std::fs;
use std::path::{Path, PathBuf};

use moira_lint::{Workspace, PASSES};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixture(path: &Path) -> Workspace {
    let text = fs::read_to_string(path).unwrap();
    let mut sources: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rel) = line.strip_prefix("//@ file: ") {
            sources.push((rel.trim().to_string(), String::new()));
        } else if let Some((_, body)) = sources.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    assert!(
        !sources.is_empty(),
        "{} has no `//@ file:` directive",
        path.display()
    );
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    Workspace::from_sources(&refs).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn fixture_files(pass: &str, prefix: &str) -> Vec<PathBuf> {
    let dir = fixtures_root().join(pass);
    let mut out: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".rs"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_pass_has_enough_fixtures() {
    for pass in PASSES {
        let bad = fixture_files(pass.name, "bad_");
        let good = fixture_files(pass.name, "good_");
        assert!(
            bad.len() >= 2,
            "{}: want >= 2 bad fixtures, have {}",
            pass.name,
            bad.len()
        );
        assert!(!good.is_empty(), "{}: want >= 1 good fixture", pass.name);
    }
}

#[test]
fn bad_fixtures_trip_their_pass() {
    for pass in PASSES {
        for path in fixture_files(pass.name, "bad_") {
            let ws = load_fixture(&path);
            let diags = ws.run_pass(pass.name).unwrap();
            assert!(
                !diags.is_empty(),
                "{} did not trip pass {}",
                path.display(),
                pass.name
            );
        }
    }
}

#[test]
fn good_fixtures_stay_clean() {
    for pass in PASSES {
        for path in fixture_files(pass.name, "good_") {
            let ws = load_fixture(&path);
            let diags = ws.run_pass(pass.name).unwrap();
            assert!(
                diags.is_empty(),
                "{} tripped pass {}: {:?}",
                path.display(),
                pass.name,
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn lint_allow_suppresses_a_finding() {
    // The bad panic fixture, with an allow comment on the line above the
    // violation: the finding must disappear — and only that one.
    let src = "\
fn poll(&mut self) {
    // lint:allow(panic-path)
    let msg = self.queue.pop().unwrap();
    let conn = self.connections.get(msg.conn).expect(\"conn vanished\");
    conn.reply(msg);
}
";
    let ws = Workspace::from_sources(&[("crates/core/src/server.rs", src)]).unwrap();
    let diags = ws.run_pass("panic-path").unwrap();
    assert_eq!(
        diags.len(),
        1,
        "allow should suppress the unwrap but keep the expect: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    assert!(diags[0].message.contains("expect"));
}

#[test]
fn unknown_pass_is_rejected() {
    let ws = Workspace::from_sources(&[]).unwrap();
    assert!(ws.run_pass("no-such-pass").is_none());
}

/// The self-check the tentpole demands: the tree at HEAD is clean, so CI
/// can deny-by-default without any allows in the audited files.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).unwrap();
    assert!(ws.files.len() > 50, "workspace walk looks broken");
    let diags = ws.run_all();
    assert!(
        diags.is_empty(),
        "workspace is not lint-clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
