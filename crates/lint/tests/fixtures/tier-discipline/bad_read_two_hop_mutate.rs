//@ file: crates/core/src/queries/users.rs
// The read handler's own body only formats rows; the mutation is two
// hops away in another file. The Mutates summary still reaches it.
use crate::maintenance::refresh_row_cache;

pub fn register(reg: &mut Registry) {
    reg.add("get_user_account", Handler::Read(get_user_account));
}

fn get_user_account(state: &MoiraState, args: &[String]) -> MrResult<Rows> {
    let rows = state.db.select("users", &Pred::Eq(0, args[0].clone()));
    refresh_row_cache(state, &rows);
    Ok(rows)
}
//@ file: crates/core/src/maintenance.rs
use crate::caches::touch_access_stamp;

pub fn refresh_row_cache(state: &MoiraState, rows: &Rows) {
    for row in rows {
        touch_access_stamp(state, row);
    }
}
//@ file: crates/core/src/caches.rs
pub fn touch_access_stamp(state: &MoiraState, row: &Row) {
    state.db.update("users", row.id, "last_read", now_string());
}
