//@ file: crates/core/src/queries/machines.rs
// Clean tiers: the read handler only selects, the write handler mutates
// through state.db (directly and via a borrowed local).

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "get_machine",
        shortname: "gmac",
        kind: Retrieve,
        access: Public,
        args: &["name"],
        returns: &["name", "type"],
        handler: Handler::Read(get_machine),
    });
    r.register(QueryHandle {
        name: "add_machine",
        shortname: "amac",
        kind: Append,
        access: QueryAcl,
        args: &["name", "type"],
        returns: &[],
        handler: Handler::Write(add_machine),
    });
}

fn get_machine(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("machine", &Pred::Eq("name", a[0].as_str().into()));
    Ok(ids.into_iter().map(|id| vec![state.db.cell("machine", id, "name").render()]).collect())
}

fn add_machine(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let db = &mut state.db;
    db.append("machine", vec![a[0].as_str().into(), a[1].as_str().into()])?;
    state.db.update("machine", 0, &[("type", a[1].as_str().into())])?;
    Ok(vec![])
}
