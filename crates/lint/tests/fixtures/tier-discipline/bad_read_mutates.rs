//@ file: crates/core/src/queries/machines.rs
// A Handler::Read that deletes rows: the retrieve tier must never mutate.

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "get_machine",
        shortname: "gmac",
        kind: Retrieve,
        access: Public,
        args: &["name"],
        returns: &["name", "type"],
        handler: Handler::Read(get_machine),
    });
}

fn get_machine(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("machine", &Pred::Eq("name", a[0].as_str().into()));
    for id in &ids {
        state.db.delete("machine", *id)?;
    }
    Ok(vec![])
}
