//@ file: crates/core/src/queries/users.rs
// The same helper shape as bad_read_two_hop_mutate, but the leaf only
// reads — the summary walk must not flag pure read helpers.
use crate::maintenance::summarize_rows;

pub fn register(reg: &mut Registry) {
    reg.add("get_user_account", Handler::Read(get_user_account));
}

fn get_user_account(state: &MoiraState, args: &[String]) -> MrResult<Rows> {
    let rows = state.db.select("users", &Pred::Eq(0, args[0].clone()));
    let _ = summarize_rows(state, &rows);
    Ok(rows)
}
//@ file: crates/core/src/maintenance.rs
use crate::caches::stamp_of;

pub fn summarize_rows(state: &MoiraState, rows: &Rows) -> usize {
    rows.iter().map(|r| stamp_of(state, r)).sum()
}
//@ file: crates/core/src/caches.rs
pub fn stamp_of(state: &MoiraState, row: &Row) -> usize {
    state.db.select("users", &Pred::Eq(0, row.key.clone())).len()
}
