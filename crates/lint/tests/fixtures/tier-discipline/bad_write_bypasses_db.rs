//@ file: crates/core/src/queries/machines.rs
// A Handler::Write that mutates a detached handle: journaling never sees
// the change because it does not go through state.db.

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "add_machine",
        shortname: "amac",
        kind: Append,
        access: QueryAcl,
        args: &["name", "type"],
        returns: &[],
        handler: Handler::Write(add_machine),
    });
}

fn add_machine(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let db = detach_somehow();
    db.append("machine", vec![a[0].as_str().into(), a[1].as_str().into()])?;
    Ok(vec![])
}
