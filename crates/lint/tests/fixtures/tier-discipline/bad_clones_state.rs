//@ file: crates/core/src/queries/machines.rs
// `let s = &state; s.db.clone()` — the rewrite the old CI grep gate
// silently passed; the receiver-aware pass still catches the `.db` clone.

fn sneaky(state: &MoiraState) -> Database {
    let s = &state;
    s.db.clone()
}
