//@ file: crates/dcm/src/generators/incremental.rs
// A full_rebuild_rows call with no `full-rebuild fallback` marker: full
// enumerations must be visibly opted into, and changed_since(0) is a full
// scan wearing a delta costume.

fn build_section_full(state: &MoiraState, section: &Section) -> Vec<RowId> {
    let rows = full_rebuild_rows(state, section.driver);
    rows
}

fn sneaky_replay(state: &MoiraState, table: &'static str) -> Vec<RowChange> {
    state.db.table(table).changed_since(0)
}
