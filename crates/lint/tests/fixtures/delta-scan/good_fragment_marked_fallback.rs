//@ file: crates/dcm/src/generators/mail.rs
// A fragment may take the full-rebuild escape hatch when the call site
// carries the marker: the engine stops Scans propagation over marked
// edges, so this stays clean.
use crate::rollup::rebuild_all_aliases;

fn delta_plan(&self) -> DeltaPlan {
    DeltaPlan {
        sections: vec![Section {
            file: "aliases",
            driver: "users",
            lookups: &[],
            kind: SectionKind::Lines(frag_aliases),
            affected: None,
        }],
    }
}

fn frag_aliases(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    // full-rebuild fallback: corrupted cursor, start over.
    let lines = rebuild_all_aliases(state);
    Some((LineKey::Row(row), format!("{}", lines)))
}
//@ file: crates/dcm/src/rollup.rs
pub fn rebuild_all_aliases(state: &MoiraState) -> usize {
    let mut n = 0;
    for (_, _) in state.db.table("aliases").iter() {
        n += 1;
    }
    n
}
