//@ file: crates/dcm/src/generators/mail.rs
// The fragment body is per-row; the whole-table enumeration hides two
// calls down, in a helper module outside the generators directory.
use crate::rollup::alias_counts;

fn delta_plan(&self) -> DeltaPlan {
    DeltaPlan {
        sections: vec![Section {
            file: "aliases",
            driver: "users",
            lookups: &[],
            kind: SectionKind::Lines(frag_aliases),
            affected: None,
        }],
    }
}

fn frag_aliases(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let count = alias_counts(state, row);
    Some((LineKey::Row(row), format!("{count}")))
}
//@ file: crates/dcm/src/rollup.rs
use crate::census::population;

pub fn alias_counts(state: &MoiraState, row: RowId) -> usize {
    population(state) + row.0
}
//@ file: crates/dcm/src/census.rs
pub fn population(state: &MoiraState) -> usize {
    let mut n = 0;
    for (_, _) in state.db.table("users").iter() {
        n += 1;
    }
    n
}
