//@ file: crates/dcm/src/generators/incremental.rs
// Whole-table iteration inside the incremental engine — the exact scan
// the delta path exists to avoid. Both the direct chain and the bound
// table handle are caught.

fn rebuild_section(state: &MoiraState, section: &Section) -> Vec<String> {
    let mut out = Vec::new();
    for (row, _) in state.db.table(section.driver).iter() {
        out.push(format!("{row:?}"));
    }
    let t = state.db.table("users");
    for (row, _) in t.iter() {
        out.push(format!("{row:?}"));
    }
    out
}
