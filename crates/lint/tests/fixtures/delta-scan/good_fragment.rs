//@ file: crates/dcm/src/generators/mail.rs
// Clean: the fragment stays per-row (indexed Eq select, per-user helper),
// and the full builder — not named by any Section — may iterate freely.

fn delta_plan(&self) -> DeltaPlan {
    DeltaPlan {
        sections: vec![Section {
            file: "aliases",
            driver: "users",
            lookups: &["list"],
            kind: SectionKind::Lines(frag_pobox),
            affected: None,
        }],
    }
}

fn frag_pobox(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let users = state.db.table("users");
    let login = users.cell(row, "login").render();
    let lists = groups_of_user(state, users.cell(row, "uid").as_int());
    Some((LineKey::Row(row), format!("{login}:{}", lists.len())))
}

fn full_builder(state: &MoiraState) -> String {
    let mut out = String::new();
    for (row, _) in state.db.table("users").iter() {
        out.push_str(&format!("{row:?}\n"));
    }
    out
}
//@ file: crates/dcm/src/generators/incremental.rs
// The marked fallback form the real engine uses.

fn build_section_full(state: &MoiraState, section: &Section) -> Vec<RowId> {
    let rows = full_rebuild_rows(state, section.driver);
    // full-rebuild fallback
    rows
}
