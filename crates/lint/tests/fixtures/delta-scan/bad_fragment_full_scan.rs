//@ file: crates/dcm/src/generators/mail.rs
// The Section literal names frag_bad as a delta fragment, and frag_bad
// full-scans: iterates a table, selects with Pred::True, and calls the
// whole-table helper active_users.

fn delta_plan(&self) -> DeltaPlan {
    DeltaPlan {
        sections: vec![Section {
            file: "aliases",
            driver: "users",
            lookups: &[],
            kind: SectionKind::Lines(frag_bad),
            affected: None,
        }],
    }
}

fn frag_bad(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    for (r, _) in state.db.table("users").iter() {
        let _ = r;
    }
    let all = state.db.select("users", &Pred::True);
    let actives = active_users(state);
    Some((LineKey::Row(row), format!("{}:{}", all.len(), actives.len())))
}
