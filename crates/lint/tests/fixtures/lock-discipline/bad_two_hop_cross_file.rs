//@ file: crates/core/src/server.rs
// Two-hop, cross-file: the helper called under the guard is itself clean —
// only its callee (in a third file) blocks. A one-level walk that checks
// just the direct callee's body misses this; the summary engine does not.
use crate::persist::flush_side_table;

fn commit(&mut self) {
    let mut guard = self.state.write();
    guard.tick += 1;
    flush_side_table(&guard);
}
//@ file: crates/core/src/persist.rs
// No primitive in this body: the blocking call is one hop further down.
use crate::media::write_dump;

pub fn flush_side_table(snapshot: &MoiraState) {
    let rendered = snapshot.render();
    write_dump(rendered);
}
//@ file: crates/core/src/media.rs
pub fn write_dump(bytes: String) {
    std::fs::write("/var/moira/dump", bytes).ok();
    std::thread::sleep(std::time::Duration::from_millis(10));
}
