//@ file: crates/core/src/glue.rs
// Acquiring a second state guard while the first is live: parking_lot
// RwLocks are not reentrant, so this self-deadlocks at runtime.

fn run(shared: &SharedState) -> usize {
    let guard = shared.state.read();
    let n = guard.clients.len();
    let again = shared.state.write();
    n + again.clients.len()
}
