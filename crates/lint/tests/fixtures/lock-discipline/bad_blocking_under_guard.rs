//@ file: crates/dcm/src/dcm.rs
// Blocking I/O while holding the state write guard stalls every session
// behind the lock for the duration of the disk write and the sleep.

fn persist(state: &SharedState) {
    let mut guard = state.write();
    guard.counter += 1;
    std::fs::write("/var/moira/dump", guard.render()).ok();
    std::thread::sleep(std::time::Duration::from_millis(50));
}
