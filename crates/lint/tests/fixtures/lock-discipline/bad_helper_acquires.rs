//@ file: crates/core/src/server.rs
// The one-level call-graph walk: `outer` holds a guard and calls a helper
// that acquires its own — the deadlock is laundered through one frame.

fn outer(state: &SharedState) {
    let g = state.read();
    let _ = g.clients.len();
    audit(state);
}

fn audit(state: &SharedState) {
    let g = state.read();
    let _ = g.counter;
}
