//@ file: crates/dcm/src/dcm.rs
// The helper chain crosses a module boundary and re-acquires the state
// lock two hops down — an instant self-deadlock under a non-reentrant
// RwLock, invisible to a one-level walk.
use crate::audit::note_progress;

fn update_pass(&mut self) {
    let guard = self.state.write();
    note_progress(self, guard.tick);
}
//@ file: crates/dcm/src/audit.rs
use crate::metrics::sample_state;

pub fn note_progress(ctx: &Dcm, tick: u64) {
    let snapshot = sample_state(ctx);
    ctx.log(tick, snapshot);
}
//@ file: crates/dcm/src/metrics.rs
pub fn sample_state(ctx: &Dcm) -> usize {
    let state = ctx.state.read();
    state.pending()
}
