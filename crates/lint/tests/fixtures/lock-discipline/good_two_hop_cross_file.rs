//@ file: crates/core/src/server.rs
// The same two-hop shape as bad_two_hop_cross_file, but the leaf helper is
// pure computation: the summary walk must not invent a violation.
use crate::persist::flush_side_table;

fn commit(&mut self) {
    let mut guard = self.state.write();
    guard.tick += 1;
    flush_side_table(&guard);
}
//@ file: crates/core/src/persist.rs
use crate::media::render_dump;

pub fn flush_side_table(snapshot: &MoiraState) {
    let rendered = snapshot.render();
    render_dump(rendered);
}
//@ file: crates/core/src/media.rs
pub fn render_dump(bytes: String) -> usize {
    bytes.len().wrapping_mul(31)
}
