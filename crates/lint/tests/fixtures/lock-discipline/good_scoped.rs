//@ file: crates/core/src/glue.rs
// Clean discipline: block-scoped guards, statement-temporary reads, and
// I/O only after every guard has dropped.

fn run(state: &SharedState) -> i64 {
    {
        let mut guard = state.write();
        guard.counter += 1;
    }
    let now = state.read().now();
    std::fs::write("/var/moira/ts", now.to_string()).ok();
    now
}

fn explicit_drop(state: &SharedState) {
    let guard = state.write();
    drop(guard);
    let again = state.read();
    let _ = again.counter;
}
