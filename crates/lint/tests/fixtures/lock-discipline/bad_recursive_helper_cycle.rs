//@ file: crates/core/src/server.rs
// The helpers below are mutually recursive; the fixpoint must terminate
// on the cycle and still propagate the blocking effect into the guard
// scope here.
use crate::retry::send_with_retry;

fn notify(&mut self) {
    let guard = self.state.write();
    send_with_retry(guard.pending(), 3);
}
//@ file: crates/core/src/retry.rs
pub fn send_with_retry(pending: usize, budget: u32) {
    if budget == 0 {
        return;
    }
    backoff_then_retry(pending, budget);
}

pub fn backoff_then_retry(pending: usize, budget: u32) {
    std::thread::sleep(std::time::Duration::from_millis(5));
    send_with_retry(pending, budget - 1);
}
