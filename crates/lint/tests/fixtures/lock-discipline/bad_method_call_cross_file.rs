//@ file: crates/core/src/server.rs
// Method-call resolution: the receiver's declared type routes the call to
// an impl in another file whose body blocks. Name-only linking could not
// do this — `commit` is far too common to trust bare.
fn persist_under_guard(&mut self) {
    let guard = self.state.write();
    let writer: WalWriter = WalWriter::for_state(&guard);
    writer.commit();
}
//@ file: crates/core/src/wal.rs
impl WalWriter {
    pub fn for_state(state: &MoiraState) -> WalWriter {
        WalWriter { seq: state.seq() }
    }

    pub fn commit(&self) {
        std::fs::write("/var/moira/wal", format!("{}", self.seq)).ok();
    }
}
