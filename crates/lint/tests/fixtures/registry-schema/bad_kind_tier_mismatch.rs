//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![C::str("login").unique(), C::int("uid").indexed()],
    ));
}
pub const RELATIONS: &[&str] = &["users"];
//@ file: crates/core/src/queries/users.rs
// Kind says Update (a mutation) but the handler is registered on the read
// tier — the registry would panic at boot; the lint catches it earlier.

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "update_user_shell",
        shortname: "uush",
        kind: Update,
        access: QueryAcl,
        args: &["login", "shell"],
        returns: &[],
        handler: Handler::Read(update_user_shell),
    });
}

fn update_user_shell(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    Ok(vec![])
}
