//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![C::str("login").unique(), C::int("uid").indexed(), C::int("status")],
    ));
}
pub const RELATIONS: &[&str] = &["users"];
//@ file: crates/core/src/queries/users.rs
// The select names table `user` (typo) and a column the schema does not
// declare.

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "get_user",
        shortname: "gusr",
        kind: Retrieve,
        access: Public,
        args: &["login"],
        returns: &["login"],
        handler: Handler::Read(get_user),
    });
}

fn get_user(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("user", &Pred::Eq("loginn", a[0].as_str().into()));
    Ok(ids.into_iter().map(|_| vec![]).collect())
}
