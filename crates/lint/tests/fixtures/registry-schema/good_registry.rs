//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![C::str("login").unique(), C::int("uid").indexed(), C::int("status")],
    ));
}
pub const RELATIONS: &[&str] = &["users"];
//@ file: crates/core/src/queries/users.rs
// Coherent: handler resolves, kinds match tiers, the ACL self-index is in
// range, and every table/column string exists in the schema.

const USER_FIELDS: &[&str] = &["login", "uid"];

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "get_user",
        shortname: "gusr",
        kind: Retrieve,
        access: QueryAclOrSelf(0),
        args: USER_FIELDS,
        returns: USER_FIELDS,
        handler: Handler::Read(get_user),
    });
    r.register(QueryHandle {
        name: "deactivate_user",
        shortname: "dusr",
        kind: Update,
        access: QueryAcl,
        args: &["login"],
        returns: &[],
        handler: Handler::Write(deactivate_user),
    });
}

fn get_user(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("users", &Pred::Eq("login", a[0].as_str().into()));
    Ok(ids
        .into_iter()
        .map(|id| vec![state.db.cell("users", id, "login").render()])
        .collect())
}

fn deactivate_user(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("users", &Pred::name_match("login", &a[0]));
    for id in ids {
        state.db.update("users", id, &[("status", 0.into())])?;
    }
    Ok(vec![])
}
