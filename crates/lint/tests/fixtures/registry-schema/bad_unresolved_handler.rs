//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![C::str("login").unique()],
    ));
}
pub const RELATIONS: &[&str] = &["users"];
//@ file: crates/core/src/queries/users.rs
// The handle names a handler function that does not exist in the module,
// and QueryAclOrSelf(2) indexes past the single declared argument.

pub fn register(r: &mut Registry) {
    r.register(QueryHandle {
        name: "get_user",
        shortname: "gusr",
        kind: Retrieve,
        access: QueryAclOrSelf(2),
        args: &["login"],
        returns: &["login"],
        handler: Handler::Read(get_user_missing),
    });
}
