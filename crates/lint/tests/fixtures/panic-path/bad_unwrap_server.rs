//@ file: crates/core/src/server.rs
// `.unwrap()` and `.expect()` in the request loop: one poisoned task and
// the daemon every workstation depends on is gone.

fn poll_once(&mut self) {
    let msg = self.queue.pop().unwrap();
    let conn = self.connections.get(msg.conn).expect("conn vanished");
    conn.reply(msg);
}
