//@ file: crates/client/src/conn.rs
// Clean: `unwrap_or` / `unwrap_or_else` are fine (token-exact matching),
// `unreachable!` on impossible arms is not on the denylist, and test code
// may unwrap freely.

fn next_reply(&mut self) -> Reply {
    let frame = self.chan.try_recv().unwrap_or_default();
    let code = frame.first().copied().unwrap_or(0);
    match code {
        0 => Reply::ok(),
        1 => Reply::busy(),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u8, ()> = Ok(4);
        assert_eq!(r.expect("ok"), 4);
    }
}
