//@ file: crates/dcm/src/update.rs
// An explicit panic! in the update leg aborts the whole DCM cycle instead
// of failing one host with an UpdateError.

fn execute_on_host(host: &mut SimHost, target: &str) -> Result<i32, HostError> {
    let Some(archive) = host.read_file(target) else {
        panic!("archive missing on {target}");
    };
    Ok(archive.len() as i32)
}
