//@ file: crates/core/src/loop.rs
// Holding the state write guard into the reactor wait parks every other
// thread that needs the state for up to the full wait timeout.

fn poll_pass(&mut self) -> usize {
    let mut guard = self.state.write();
    guard.tick += 1;
    let ready = self.reactor.wait(Some(TICK));
    dispatch(&mut guard, ready)
}

fn helper_form(&mut self) {
    let guard = self.state.read();
    self.poll_with_timeout(Some(TICK));
    let _ = guard.tick;
}
