//@ file: crates/core/src/loop.rs
// The discipline cannot be laundered through a same-file wrapper: `pump`
// performs the reactor wait, and `refresh` calls it with a guard live.

fn pump(&mut self) -> usize {
    let ready = self.reactor.wait(Some(TICK));
    self.dispatch(ready)
}

fn refresh(&mut self) {
    let guard = self.state.write();
    pump(self);
    let _ = guard.tick;
}
