//@ file: crates/core/src/loop.rs
// A function that performs the reactor wait is loop code: a sleep or a
// blocking receive in its body stalls every live connection at once.

fn poll_pass(&mut self) -> usize {
    let ready = self.reactor.wait(Some(TICK));
    if ready.is_empty() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let cmd = self.commands.recv_timeout(TICK);
    self.dispatch(ready, cmd)
}
