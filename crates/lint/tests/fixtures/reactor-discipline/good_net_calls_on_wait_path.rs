//@ file: crates/core/src/loop.rs
// Socket calls on the wait path are fine: the loop's fds are non-blocking,
// so accept/connect return immediately. The engine tracks them as a
// separate effect precisely so this stays clean while sleeps are denied.
use crate::intake::accept_ready;

fn poll_pass(&mut self) -> usize {
    let ready = self.reactor.wait(Some(TICK));
    accept_ready(self, ready)
}
//@ file: crates/core/src/intake.rs
pub fn accept_ready(srv: &mut Server, ready: Readiness) -> usize {
    let mut n = 0;
    if ready.listener {
        while let Ok((sock, _)) = srv.listener.accept() {
            sock.set_nonblocking(true).ok();
            n += 1;
        }
    }
    n
}
