//@ file: crates/core/src/loop.rs
// The loop body looks clean — the sleep is two calls away, in another
// file. The wait-path summary walk still reaches it.
use crate::flush::flush_batches;

fn poll_pass(&mut self) -> usize {
    let ready = self.reactor.wait(Some(TICK));
    flush_batches(self, ready)
}
//@ file: crates/core/src/flush.rs
use crate::throttle::pace;

pub fn flush_batches(srv: &mut Server, ready: Readiness) -> usize {
    let n = srv.drain(ready);
    pace(n);
    n
}
//@ file: crates/core/src/throttle.rs
pub fn pace(batches: usize) {
    if batches > 8 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
