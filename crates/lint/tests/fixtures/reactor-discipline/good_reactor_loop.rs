//@ file: crates/core/src/loop.rs
// Clean loop: the wait happens with no guard live, guards are taken only
// after readiness is known, and non-blocking socket calls are fine.

fn poll_pass(&mut self) -> usize {
    let ready = self.reactor.wait(Some(TICK));
    if ready.listener {
        let (sock, _) = self.listener.accept().unwrap_or_default();
        sock.set_nonblocking(true).ok();
    }
    {
        let mut guard = self.state.write();
        guard.tick += 1;
    }
    let count = self.state.read().pending();
    self.dispatch(ready, count)
}

fn guard_dropped_before_wait(&mut self) {
    let guard = self.state.write();
    drop(guard);
    self.reactor.wait(Some(TICK));
}
