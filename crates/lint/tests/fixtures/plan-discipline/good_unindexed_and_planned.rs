//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![C::str("login").unique(), C::str("status")],
    ));
    db.create_table(TableSchema::new(
        "numvalues",
        vec![C::str("name"), C::int("value")],
    ));
}

//@ file: crates/core/src/queries/users.rs
// All clean: an indexed lookup through select(), a full walk of a table
// with no indexes (a scan is its only possible plan), iteration over a
// plain Vec, a dump behind a reviewed allow, and a scan inside a test.

fn get_user(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let rows = state.db.select("users", &Pred::Eq("login", a[0].as_str().into()));
    Ok(rows.iter().map(|&r| vec![format!("{r:?}")]).collect())
}

fn dump_values(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let t = state.db.table("numvalues");
    let mut out = Vec::new();
    for (row, _) in t.iter() {
        out.push(vec![t.cell(row, "name").render()]);
    }
    Ok(out)
}

fn qualified_dump(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let t = state.db.table("users");
    let mut out = Vec::new();
    // Tristate qualifier over every row — a reviewed full-scan dump.
    // lint:allow(plan-discipline)
    for (row, _) in t.iter() {
        out.push(vec![t.cell(row, "login").render()]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scans_are_fine_in_tests() {
        let state = test_state();
        for (row, _) in state.db.table("users").iter() {
            let _ = row;
        }
    }
}
