//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![
            C::str("login").unique(),
            C::int("users_id").unique(),
            C::str("status"),
        ],
    ));
}

//@ file: crates/core/src/queries/users.rs
// Direct chain: the handler walks the whole users table even though
// `login` is unique — the exact lookup the planner serves from the
// index.

fn get_user_by_login(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let mut out = Vec::new();
    for (row, r) in state.db.table("users").iter() {
        if r[0].as_str() == a[0] {
            out.push(vec![format!("{row:?}")]);
        }
    }
    Ok(out)
}
