//@ file: crates/core/src/schema.rs
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "list",
        vec![
            C::str("name").unique(),
            C::int("list_id").unique(),
            C::int("acl_id").indexed(),
        ],
    ));
}

//@ file: crates/core/src/queries/lists.rs
// The table handle is bound to a local first; iterating through the
// local is the same full scan.

fn lists_owned_by(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let t = state.db.table("list");
    let mut out = Vec::new();
    for (row, _) in t.iter() {
        if t.cell(row, "acl_id").as_int().to_string() == a[0] {
            out.push(vec![t.cell(row, "name").render()]);
        }
    }
    Ok(out)
}
