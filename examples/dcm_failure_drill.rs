//! DCM failure drill (§5.9): crash a server mid-update, corrupt a
//! transfer, hard-fail an install script — and watch the update protocol
//! recover every time without ever leaving a torn file.
//!
//! Run with: `cargo run --example dcm_failure_drill`

use moira::core::state::Caller;
use moira::sim::{Deployment, PopulationSpec};

fn main() {
    let mut athena = Deployment::build(&PopulationSpec::small());
    let hesiod_host_name = athena.population.hesiod_servers[0].clone();
    println!("deployment up; hesiod served from {hesiod_host_name}\n");
    athena.run_dcm_once();
    athena.advance(60);

    // --- Drill 1: crash during the update. ---------------------------------
    println!("drill 1: {hesiod_host_name} will crash two operations into the next update");
    {
        let mut s = athena.state.write();
        let login = athena.population.active_logins[0].clone();
        athena
            .registry
            .execute(
                &mut s,
                &Caller::root("ops"),
                "update_user_shell",
                &[login, "/bin/drill1".into()],
            )
            .unwrap();
    }
    athena.hosts[&hesiod_host_name].lock().fail.crash_after_ops = Some(2);
    athena.advance(7 * 3600);
    let report = athena.run_dcm_once();
    let (_, _, result) = &report.updates[0];
    println!("  update result: {result:?} (soft — tagged for retry)");
    {
        let host = athena.hosts[&hesiod_host_name].lock();
        let passwd = host
            .read_file("/var/hesiod/passwd.db")
            .map(|b| b.len())
            .unwrap_or(0);
        println!("  installed passwd.db intact at {passwd} bytes (old version, never torn)");
    }
    println!("  rebooting the host; next DCM pass retries…");
    athena.hosts[&hesiod_host_name].lock().reboot();
    athena.advance(3600);
    let report = athena.run_dcm_once();
    println!("  retry result: {:?}", report.updates[0].2);

    // --- Drill 2: network corruption caught by the checksum. ---------------
    println!("\ndrill 2: the network now flips a byte in every transfer");
    athena.advance(60);
    {
        let mut s = athena.state.write();
        let login = athena.population.active_logins[1].clone();
        athena
            .registry
            .execute(
                &mut s,
                &Caller::root("ops"),
                "update_user_shell",
                &[login, "/bin/drill2".into()],
            )
            .unwrap();
    }
    athena.hosts[&hesiod_host_name]
        .lock()
        .fail
        .corrupt_transfers = true;
    athena.advance(7 * 3600);
    let report = athena.run_dcm_once();
    println!("  update result: {:?}", report.updates[0].2);
    athena.hosts[&hesiod_host_name]
        .lock()
        .fail
        .corrupt_transfers = false;
    athena.advance(3600);
    let report = athena.run_dcm_once();
    println!("  after the network heals: {:?}", report.updates[0].2);

    // --- Drill 3: a hard failure pages the maintainers. --------------------
    println!("\ndrill 3: the install script starts exiting 13 (a hard error)");
    athena.advance(60);
    {
        let mut s = athena.state.write();
        let login = athena.population.active_logins[2].clone();
        athena
            .registry
            .execute(
                &mut s,
                &Caller::root("ops"),
                "update_user_shell",
                &[login, "/bin/drill3".into()],
            )
            .unwrap();
    }
    athena.hosts[&hesiod_host_name].lock().fail.fail_exec_with = Some(13);
    athena.advance(7 * 3600);
    let report = athena.run_dcm_once();
    println!("  update result: {:?}", report.updates[0].2);
    for notice in &athena.dcm.notices {
        println!(
            "  notice [{}] {}{}: {}",
            notice.kind,
            notice.target,
            if notice.instance.is_empty() {
                String::new()
            } else {
                format!("/{}", notice.instance)
            },
            notice.message
        );
    }
    println!("  hard errors stop retries until an operator resets them:");
    athena.advance(7 * 3600);
    let report = athena.run_dcm_once();
    println!(
        "  next pass attempts {} updates (service skipped)",
        report.updates.len()
    );

    println!("  operator: reset_server_error + reset_server_host_error, fix the script…");
    athena.hosts[&hesiod_host_name].lock().fail.fail_exec_with = None;
    {
        let mut s = athena.state.write();
        let root = Caller::root("operator");
        athena
            .registry
            .execute(&mut s, &root, "reset_server_error", &["HESIOD".into()])
            .unwrap();
        athena
            .registry
            .execute(
                &mut s,
                &root,
                "reset_server_host_error",
                &["HESIOD".into(), hesiod_host_name.clone()],
            )
            .unwrap();
    }
    athena.advance(7 * 3600);
    let report = athena.run_dcm_once();
    println!("  after reset: {:?}", report.updates[0].2);

    // Final consistency check.
    let hesiod = athena.hesiod_one();
    let login = athena.population.active_logins[2].clone();
    let passwd = hesiod.lock().resolve(&login, "passwd").unwrap();
    println!(
        "\nfinal state consistent — hesiod serves the drill-3 shell: {}",
        passwd[0].contains("/bin/drill3")
    );
}
