//! Quickstart: bring up a Moira server, connect a client, make an
//! administrative change, and watch the DCM distribute it.
//!
//! Run with: `cargo run --example quickstart`

use moira::client::{MoiraConn, ServerThread};
use moira::core::server::standard_server;
use moira::sim::{Deployment, PopulationSpec};

fn main() {
    // --- 1. A Moira server with a seeded database. -------------------------
    let (server, state, _registry) = standard_server(moira::common::VClock::new());
    {
        // Bootstrap one administrator onto the moira-admins list (id 2).
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "admin", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    let thread = ServerThread::spawn(server);

    // --- 2. A client connects, authenticates, and works. -------------------
    let mut client = thread.connect();
    client.noop().expect("mr_noop handshake");
    client.auth("admin", "quickstart").expect("mr_auth");
    println!("connected and authenticated as admin");

    client
        .query("add_machine", &["E40-PO.MIT.EDU", "VAX"], &mut |_| {})
        .expect("add a machine");
    client
        .query(
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "Fowler", "Harmon", "C", "1", "xid", "1990",
            ],
            &mut |_| {},
        )
        .expect("add a user");
    client
        .query(
            "set_pobox",
            &["babette", "POP", "E40-PO.MIT.EDU"],
            &mut |_| {},
        )
        .expect("assign a post office box");

    let mut rows = Vec::new();
    client
        .query("get_user_by_login", &["babette"], &mut |tuple| {
            rows.push(tuple.to_vec())
        })
        .expect("retrieve");
    println!(
        "get_user_by_login(babette) -> login={} uid={} shell={}",
        rows[0][0], rows[0][1], rows[0][2]
    );

    // Unauthorized callers are refused: a fresh, unauthenticated connection
    // cannot mutate.
    let mut anonymous = thread.connect();
    let denied = anonymous.query("add_machine", &["EVIL", "VAX"], &mut |_| {});
    println!("unauthenticated add_machine -> {:?}", denied.unwrap_err());
    drop(client);
    drop(anonymous);
    drop(thread);

    // --- 3. The full pipeline: population, DCM, consumers. -----------------
    println!("\nbuilding a small simulated Athena and running one DCM cycle…");
    let mut athena = Deployment::build(&PopulationSpec::small());
    let report = athena.run_dcm_once();
    for (svc, files, bytes) in &report.generated {
        println!("  generated {svc}: {files} files, {bytes} bytes");
    }
    println!(
        "  pushed {} host updates, all succeeded: {}",
        report.updates.len(),
        report.updates.iter().all(|(_, _, r)| r.is_ok())
    );
    let login = athena.population.active_logins[0].clone();
    let hesiod = athena.hesiod_one();
    let answer = hesiod
        .lock()
        .resolve(&login, "pobox")
        .expect("hesiod lookup");
    println!("  hesiod now answers: {login}.pobox -> {:?}", answer[0]);
    println!("\nquickstart complete.");
}
