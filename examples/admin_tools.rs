//! The administrative interface programs (§5.1.H) in action: the paper's
//! own two motivating examples — a quota change and a mailing-list
//! self-subscription — driven through the twelve client tools, including
//! the menu package.
//!
//! Run with: `cargo run --example admin_tools`

use std::cell::RefCell;
use std::rc::Rc;

use moira::client::apps::{
    chfn, chpobox, chsh, usermaint_menu, DcmMaint, ListFlags, ListMaint, MailMaint, UserMaint,
};
use moira::client::{DirectClient, MoiraConn};
use moira::sim::{Deployment, PopulationSpec};

fn main() {
    let mut athena = Deployment::build(&PopulationSpec::small());
    athena.run_dcm_once();
    athena.advance(60); // administrative work starts after the DCM pass
    let user = athena.population.active_logins[0].clone();
    let admin_conn = || {
        DirectClient::connect_as_root(athena.state.clone(), athena.registry.clone(), "admin_tools")
    };

    // --- The paper's first example (§3): the accounts administrator
    // changes a disk quota "on her workstation … the change will
    // automatically take place on the proper server a short time later."
    let mut conn = admin_conn();
    println!(
        "{}",
        UserMaint::set_quota(&mut conn, &user, &user, 500).unwrap()
    );

    // --- The paper's second example (§3): a user adds themselves to a
    // public mailing list.
    let mut me = DirectClient::connect(
        athena.state.clone(),
        athena.registry.clone(),
        &user,
        "mailmaint",
    );
    let public = MailMaint::public_lists(&mut me).unwrap();
    println!(
        "public lists visible to {user}: {:?}…",
        &public[..public.len().min(3)]
    );
    println!(
        "{}",
        MailMaint::subscribe(&mut me, &user, &public[0]).unwrap()
    );

    // --- A tour of the other tools.
    let mut conn = admin_conn();
    println!("{}", chsh(&mut conn, &user, "/bin/tcsh").unwrap());
    println!(
        "{}",
        chfn(&mut conn, &user, &[("office_phone", "x3-1300")]).unwrap()
    );
    let po = athena.population.pop_servers[1].clone();
    println!("{}", chpobox(&mut conn, &user, "POP", &po).unwrap());
    println!(
        "{}",
        ListMaint::create(
            &mut conn,
            "drama-club",
            &ListFlags {
                active: true,
                public: true,
                maillist: true,
                ..Default::default()
            },
            "USER",
            &user,
            "Drama Club"
        )
        .unwrap()
    );
    println!(
        "{}",
        ListMaint::add_member(&mut conn, "drama-club", "USER", &user).unwrap()
    );
    for line in DcmMaint::status(&mut conn, "*").unwrap() {
        println!("dcm_maint: {line}");
    }

    // --- The menu package (§5.6.3) driving usermaint interactively.
    println!("\n--- usermaint menu session (scripted) ---");
    let boxed: Rc<RefCell<Box<dyn MoiraConn>>> = Rc::new(RefCell::new(Box::new(admin_conn())));
    let menu = usermaint_menu(boxed);
    let mut output = String::new();
    let script = ["chsh", user.as_str(), "/bin/sh", "q"];
    menu.run(&mut script.into_iter(), &mut output);
    print!("{output}");

    // --- Propagate and verify the change reached the servers.
    athena.advance(13 * 3600);
    athena.run_dcm_once();
    let uid: i64 = {
        let s = athena.state.read();
        let row =
            s.db.table("users")
                .select_one(&moira::db::Pred::Eq("login", user.clone().into()))
                .unwrap();
        s.db.cell("users", row, "uid").as_int()
    };
    let served = athena
        .nfs
        .values()
        .any(|n| n.lock().quota(uid) == Some(500));
    println!("\nquota change visible on the proper NFS server after propagation: {served}");
    let hesiod = athena.hesiod_one();
    let passwd = hesiod.lock().resolve(&user, "passwd").unwrap();
    println!(
        "hesiod serves the new shell: {}",
        passwd[0].ends_with(":/bin/sh")
    );
}
