//! Registration day (§5.10): a new student self-registers with zero staff
//! intervention, and the resources become real once the DCM propagates.
//!
//! Run with: `cargo run --example registration_day`

use moira::core::userreg::{make_authenticator, RegReply, RegRequest};
use moira::sim::{Deployment, PopulationSpec};

fn main() {
    let mut spec = PopulationSpec::small();
    spec.unregistered_users = 3;
    let mut athena = Deployment::build(&spec);
    athena.run_dcm_once();
    athena.advance(60); // the student arrives a minute after the DCM pass

    let (first, last, id_number) = athena.population.unregistered[0].clone();
    println!("student walks up: {first} {last} (ID {id_number})");
    println!("logs in as register/athena; the forms interface collects the ID…\n");

    // Step 1: verify_user.
    let reply = athena.regserver.handle(&RegRequest::VerifyUser {
        first: first.clone(),
        last: last.clone(),
        authenticator: make_authenticator(&id_number, &first, &last, None),
    });
    println!("verify_user   -> {reply:?} (status 0 = registerable)");

    // A typo in the ID is caught by the encrypted authenticator.
    let reply = athena.regserver.handle(&RegRequest::VerifyUser {
        first: first.clone(),
        last: last.clone(),
        authenticator: make_authenticator("999-99-9999", &first, &last, None),
    });
    println!("verify_user (wrong ID) -> {reply:?}");

    // Step 2: grab_login, with a collision on the first choice.
    athena.kdc.register("mozart", "taken").unwrap();
    for login in ["mozart", "wanderer"] {
        let reply = athena.regserver.handle(&RegRequest::GrabLogin {
            first: first.clone(),
            last: last.clone(),
            authenticator: make_authenticator(&id_number, &first, &last, Some(login)),
        });
        println!("grab_login({login:?}) -> {reply:?}");
        if matches!(reply, RegReply::Ok(_)) {
            break;
        }
    }

    // Step 3: set_password (forwarded to Kerberos over the srvtab channel).
    let reply = athena.regserver.handle(&RegRequest::SetPassword {
        first: first.clone(),
        last: last.clone(),
        authenticator: make_authenticator(&id_number, &first, &last, Some("hunter2")),
    });
    println!("set_password  -> {reply:?}");
    println!(
        "kerberos initial tickets now work: {}",
        athena
            .kdc
            .initial_ticket("wanderer", "hunter2", "moira")
            .is_ok()
    );

    // "However, the user will not benefit from this allocation for a
    // maximum of six hours… due to the operation of Moira" — until the DCM
    // interval elapses, the servers don't know the account.
    let hesiod = athena.hesiod_one();
    println!(
        "\nimmediately after registration, hesiod knows 'wanderer': {}",
        hesiod.lock().resolve("wanderer", "pobox").is_ok()
    );
    println!("…the account is half-registered; accounts staff activates it…");
    {
        let mut s = athena.state.write();
        athena
            .registry
            .execute(
                &mut s,
                &moira::core::state::Caller::root("accounts"),
                "update_user_status",
                &["wanderer".into(), "1".into()],
            )
            .unwrap();
    }
    println!("…twelve hours later the DCM runs…");
    athena.advance(12 * 3600);
    athena.run_dcm_once();
    let pobox = hesiod
        .lock()
        .resolve("wanderer", "pobox")
        .expect("propagated");
    println!("hesiod now answers: wanderer.pobox -> {:?}", pobox[0]);
    let locker = "/u1/lockers/wanderer".to_string();
    let created = athena
        .nfs
        .values()
        .any(|n| n.lock().locker(&locker).is_some());
    println!("home locker created on its NFS server: {created}");
}
